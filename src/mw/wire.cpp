#include "mw/wire.hpp"

#include "util/codec.hpp"

namespace sos::mw {

util::Bytes HelloFrame::signing_bytes() const {
  util::Writer w;
  w.str("sos-hello-v1");
  w.raw(util::ByteView(ephemeral_pub.data(), ephemeral_pub.size()));
  return w.take();
}

util::Bytes HelloFrame::encode() const {
  util::Writer w;
  w.bytes(certificate);
  w.raw(util::ByteView(ephemeral_pub.data(), ephemeral_pub.size()));
  w.raw(util::ByteView(binding_sig.data(), binding_sig.size()));
  return w.take();
}

std::optional<HelloFrame> HelloFrame::decode(util::ByteView data) {
  util::Reader r(data);
  HelloFrame f;
  f.certificate = r.bytes();
  f.ephemeral_pub = r.raw_array<crypto::kX25519KeySize>();
  f.binding_sig = r.raw_array<crypto::kEdSignatureSize>();
  if (!r.done()) return std::nullopt;
  return f;
}

util::Bytes ResumeFrame::signing_bytes() const {
  util::Writer w;
  w.str("sos-resume-v1");
  w.raw(util::ByteView(fingerprint.data(), fingerprint.size()));
  w.raw(util::ByteView(nonce.data(), nonce.size()));
  return w.take();
}

util::Bytes ResumeFrame::encode() const {
  util::Writer w;
  w.raw(util::ByteView(fingerprint.data(), fingerprint.size()));
  w.raw(util::ByteView(nonce.data(), nonce.size()));
  w.raw(util::ByteView(proof.data(), proof.size()));
  return w.take();
}

std::optional<ResumeFrame> ResumeFrame::decode(util::ByteView data) {
  util::Reader r(data);
  ResumeFrame f;
  f.fingerprint = r.raw_array<32>();
  f.nonce = r.raw_array<32>();
  f.proof = r.raw_array<32>();
  if (!r.done()) return std::nullopt;
  return f;
}

util::Bytes SummaryFrame::encode() const {
  util::Writer w;
  w.varint(entries.size());
  for (const auto& [uid, num] : entries) {
    w.raw(uid.view());
    w.u32(num);
  }
  w.varint(unicast.size());
  for (const auto& u : unicast) {
    w.raw(u.id.origin.view());
    w.u32(u.id.msg_num);
    w.raw(u.dest.view());
  }
  w.bytes(scheme_blob);
  return w.take();
}

std::optional<SummaryFrame> SummaryFrame::decode(util::ByteView data) {
  util::Reader r(data);
  SummaryFrame f;
  std::uint64_t n = r.varint();
  if (n > 1'000'000) return std::nullopt;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    pki::UserId uid;
    uid.bytes = r.raw_array<pki::kUserIdSize>();
    std::uint32_t num = r.u32();
    f.entries[uid] = num;
  }
  std::uint64_t m = r.varint();
  if (m > 1'000'000) return std::nullopt;
  for (std::uint64_t i = 0; i < m && r.ok(); ++i) {
    UnicastEntry u;
    u.id.origin.bytes = r.raw_array<pki::kUserIdSize>();
    u.id.msg_num = r.u32();
    u.dest.bytes = r.raw_array<pki::kUserIdSize>();
    f.unicast.push_back(u);
  }
  f.scheme_blob = r.bytes();
  if (!r.done()) return std::nullopt;
  return f;
}

util::Bytes RequestFrame::encode() const {
  util::Writer w;
  w.varint(by_publisher.size());
  for (const auto& [uid, since] : by_publisher) {
    w.raw(uid.view());
    w.u32(since);
  }
  w.varint(by_id.size());
  for (const auto& id : by_id) {
    w.raw(id.origin.view());
    w.u32(id.msg_num);
  }
  return w.take();
}

std::optional<RequestFrame> RequestFrame::decode(util::ByteView data) {
  util::Reader r(data);
  RequestFrame f;
  std::uint64_t n = r.varint();
  if (n > 1'000'000) return std::nullopt;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    pki::UserId uid;
    uid.bytes = r.raw_array<pki::kUserIdSize>();
    std::uint32_t since = r.u32();
    f.by_publisher.emplace_back(uid, since);
  }
  std::uint64_t m = r.varint();
  if (m > 1'000'000) return std::nullopt;
  for (std::uint64_t i = 0; i < m && r.ok(); ++i) {
    bundle::BundleId id;
    id.origin.bytes = r.raw_array<pki::kUserIdSize>();
    id.msg_num = r.u32();
    f.by_id.push_back(id);
  }
  if (!r.done()) return std::nullopt;
  return f;
}

util::Bytes BundleDataFrame::encode() const {
  util::Writer w;
  w.bytes(bundle);
  w.bytes(origin_cert);
  w.u32(spray_copies);
  return w.take();
}

std::optional<BundleDataFrame> BundleDataFrame::decode(util::ByteView data) {
  util::Reader r(data);
  BundleDataFrame f;
  f.bundle = r.bytes();
  f.origin_cert = r.bytes();
  f.spray_copies = r.u32();
  if (!r.done()) return std::nullopt;
  return f;
}

}  // namespace sos::mw
