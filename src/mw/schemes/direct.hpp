// Direct delivery: no relaying at all — subscribers fetch posts from the
// publisher itself, and unicast travels only source -> destination. This is
// the "1-hop" baseline the evaluation splits out in Fig 4c/4d.
#pragma once

#include "mw/routing.hpp"

namespace sos::mw {

class DirectDeliveryScheme : public RoutingScheme {
 public:
  std::string name() const override { return "direct"; }

  std::map<pki::UserId, std::uint32_t> advertisement(const RoutingContext& ctx) override;
  bool should_connect(const RoutingContext& ctx,
                      const std::map<pki::UserId, std::uint32_t>& advertised) override;
  RequestPlan plan_requests(const RoutingContext& ctx, const PeerView& peer) override;
  bool may_send(const RoutingContext& ctx, const bundle::Bundle& b,
                const PeerView& peer) override;
  bool should_carry(const RoutingContext& ctx, const bundle::Bundle& b) override;
};

}  // namespace sos::mw
