#include "mw/schemes/prophet.hpp"

#include <cmath>

#include "util/codec.hpp"

namespace sos::mw {

void ProphetScheme::age(util::SimTime now) {
  if (now <= last_age_) return;
  double units = (now - last_age_) / params_.age_unit_s;
  double factor = std::pow(params_.gamma, units);
  // Decay-and-prune: entries falling below the floor leave the table
  // entirely, so month-scale idle periods cannot accumulate denormal
  // predictabilities (or their summary-blob bytes).
  for (auto it = pred_.begin(); it != pred_.end();) {
    it->second *= factor;
    if (it->second < params_.p_floor) {
      it = pred_.erase(it);
    } else {
      ++it;
    }
  }
  last_age_ = now;
}

void ProphetScheme::on_encounter(const RoutingContext& ctx, const pki::UserId& peer) {
  age(ctx.now());
  double& p = pred_[peer];
  p = p + (1.0 - p) * params_.p_init;  // direct boost
}

void ProphetScheme::on_peer_blob(const pki::UserId& peer, util::ByteView blob) {
  util::Reader r(blob);
  std::uint64_t n = r.varint();
  if (n > 100000) return;
  std::map<pki::UserId, double> table;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    pki::UserId uid;
    uid.bytes = r.raw_array<pki::kUserIdSize>();
    table[uid] = r.f64();
  }
  if (!r.ok()) return;
  // Transitive update: P(a,c) = max(P_old, P(a,b) * P(b,c) * beta).
  // Candidates below the floor never enter the table — the old code's
  // `pred_[dest]` default-constructed a permanent 0.0 entry for every
  // destination any peer had ever heard of, an unbounded table at month
  // horizons.
  double p_ab = pred_.count(peer) ? pred_[peer] : 0.0;
  for (const auto& [dest, p_bc] : table) {
    if (dest == peer) continue;
    double candidate = p_ab * p_bc * params_.beta;
    if (candidate < params_.p_floor) continue;
    auto [it, inserted] = pred_.try_emplace(dest, candidate);
    if (!inserted && candidate > it->second) it->second = candidate;
  }
  peer_tables_[peer] = std::move(table);
}

util::Bytes ProphetScheme::summary_blob(const RoutingContext& ctx) {
  age(ctx.now());
  util::Writer w;
  w.varint(pred_.size());
  for (const auto& [uid, p] : pred_) {
    w.raw(uid.view());
    w.f64(p);
  }
  return w.take();
}

void ProphetScheme::save_state(util::Writer& w) const {
  w.f64(last_age_);
  w.varint(pred_.size());
  for (const auto& [uid, p] : pred_) {
    w.raw(uid.view());
    w.f64(p);
  }
  w.varint(peer_tables_.size());
  for (const auto& [peer, table] : peer_tables_) {
    w.raw(peer.view());
    w.varint(table.size());
    for (const auto& [uid, p] : table) {
      w.raw(uid.view());
      w.f64(p);
    }
  }
}

bool ProphetScheme::load_state(util::Reader& r) {
  double last_age = r.f64();
  std::uint64_t n = r.varint();
  std::map<pki::UserId, double> pred;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    pki::UserId uid;
    uid.bytes = r.raw_array<pki::kUserIdSize>();
    pred[uid] = r.f64();
  }
  std::uint64_t peers = r.varint();
  std::map<pki::UserId, std::map<pki::UserId, double>> tables;
  for (std::uint64_t i = 0; i < peers && r.ok(); ++i) {
    pki::UserId peer;
    peer.bytes = r.raw_array<pki::kUserIdSize>();
    std::uint64_t k = r.varint();
    std::map<pki::UserId, double> table;
    for (std::uint64_t j = 0; j < k && r.ok(); ++j) {
      pki::UserId uid;
      uid.bytes = r.raw_array<pki::kUserIdSize>();
      table[uid] = r.f64();
    }
    tables[peer] = std::move(table);
  }
  if (!r.ok()) return false;
  last_age_ = last_age;
  pred_ = std::move(pred);
  peer_tables_ = std::move(tables);
  return true;
}

double ProphetScheme::predictability(const pki::UserId& dest) const {
  auto it = pred_.find(dest);
  return it == pred_.end() ? 0.0 : it->second;
}

double ProphetScheme::peer_predictability(const pki::UserId& peer,
                                          const pki::UserId& dest) const {
  auto it = peer_tables_.find(peer);
  if (it == peer_tables_.end()) return 0.0;
  auto jt = it->second.find(dest);
  return jt == it->second.end() ? 0.0 : jt->second;
}

std::map<pki::UserId, std::uint32_t> ProphetScheme::advertisement(const RoutingContext& ctx) {
  return ctx.store().summary();
}

bool ProphetScheme::should_connect(const RoutingContext&,
                                   const std::map<pki::UserId, std::uint32_t>&) {
  // Every encounter is valuable: it updates predictabilities and may open a
  // forwarding opportunity.
  return true;
}

RequestPlan ProphetScheme::plan_requests(const RoutingContext& ctx, const PeerView& peer) {
  RequestPlan plan;
  for (const auto& u : peer.summary.unicast) {
    if (ctx.store().contains(u.id)) continue;
    if (u.dest == ctx.self()) {
      plan.by_id.push_back(u.id);
      continue;
    }
    // Pull the bundle if we are a better carrier than the current one.
    if (predictability(u.dest) > peer_predictability(peer.uid, u.dest)) {
      plan.by_id.push_back(u.id);
    }
  }
  return plan;
}

bool ProphetScheme::may_send(const RoutingContext&, const bundle::Bundle& b,
                             const PeerView& peer) {
  if (!b.is_unicast()) return false;  // PRoPHET instance handles unicast only
  if (b.dest == peer.uid) return true;
  return peer_predictability(peer.uid, b.dest) > predictability(b.dest);
}

bool ProphetScheme::should_carry(const RoutingContext&, const bundle::Bundle& b) {
  return b.is_unicast();
}

}  // namespace sos::mw
