// Epidemic routing (Vahdat & Becker 2000): gratuitous replication — pull
// every message you do not yet hold from every node you meet, carry and
// serve everything. One of the two schemes the paper ships in SOS.
#pragma once

#include "mw/routing.hpp"

namespace sos::mw {

class EpidemicScheme : public RoutingScheme {
 public:
  std::string name() const override { return "epidemic"; }

  std::map<pki::UserId, std::uint32_t> advertisement(const RoutingContext& ctx) override;
  bool should_connect(const RoutingContext& ctx,
                      const std::map<pki::UserId, std::uint32_t>& advertised) override;
  RequestPlan plan_requests(const RoutingContext& ctx, const PeerView& peer) override;
  bool may_send(const RoutingContext& ctx, const bundle::Bundle& b,
                const PeerView& peer) override;
  bool should_carry(const RoutingContext& ctx, const bundle::Bundle& b) override;
};

}  // namespace sos::mw
