// Interest-Based (IB) routing — the paper's second built-in scheme:
// "operates in a similar manner to epidemic routing, except, instead of
// propagating messages to all users, messages are only propagated to
// interested users who are subscribed to the publisher of the original
// message" (§III-B). A node becomes a forwarder for a publisher exactly
// when it requests and receives that publisher's messages.
#pragma once

#include "mw/routing.hpp"

namespace sos::mw {

class InterestBasedScheme : public RoutingScheme {
 public:
  std::string name() const override { return "interest"; }

  std::map<pki::UserId, std::uint32_t> advertisement(const RoutingContext& ctx) override;
  bool should_connect(const RoutingContext& ctx,
                      const std::map<pki::UserId, std::uint32_t>& advertised) override;
  RequestPlan plan_requests(const RoutingContext& ctx, const PeerView& peer) override;
  bool may_send(const RoutingContext& ctx, const bundle::Bundle& b,
                const PeerView& peer) override;
  bool should_carry(const RoutingContext& ctx, const bundle::Bundle& b) override;
};

}  // namespace sos::mw
