#include "mw/schemes/direct.hpp"

namespace sos::mw {

std::map<pki::UserId, std::uint32_t> DirectDeliveryScheme::advertisement(
    const RoutingContext& ctx) {
  // Serve only self-authored content (plus destination-keyed entries for
  // own unsent direct messages).
  std::map<pki::UserId, std::uint32_t> out;
  auto summary = ctx.store().summary();
  auto it = summary.find(ctx.self());
  if (it != summary.end()) out.insert(*it);
  RoutingContext::merge_max(out, ctx.unicast_dest_summary());
  return out;
}

bool DirectDeliveryScheme::should_connect(
    const RoutingContext& ctx, const std::map<pki::UserId, std::uint32_t>& advertised) {
  for (const auto& [uid, num] : advertised) {
    if (ctx.subscribed_to(uid) && num > ctx.max_held(uid)) return true;
    if (uid == ctx.self()) return true;  // mail waiting for this user
  }
  return false;
}

RequestPlan DirectDeliveryScheme::plan_requests(const RoutingContext& ctx,
                                                const PeerView& peer) {
  RequestPlan plan;
  // Only fetch the peer's own posts, and only if this user follows them.
  auto it = peer.summary.entries.find(peer.uid);
  if (it != peer.summary.entries.end() && ctx.subscribed_to(peer.uid)) {
    std::uint32_t held = ctx.max_held(peer.uid);
    if (it->second > held) plan.by_publisher.emplace_back(peer.uid, held);
  }
  for (const auto& u : peer.summary.unicast)
    if (u.dest == ctx.self() && u.id.origin == peer.uid && !ctx.store().contains(u.id))
      plan.by_id.push_back(u.id);
  return plan;
}

bool DirectDeliveryScheme::may_send(const RoutingContext& ctx, const bundle::Bundle& b,
                                    const PeerView& peer) {
  if (b.origin != ctx.self()) return false;  // never forward others' data
  if (b.is_unicast()) return b.dest == peer.uid;
  return true;
}

bool DirectDeliveryScheme::should_carry(const RoutingContext&, const bundle::Bundle&) {
  return false;  // deliver-only; wanted bundles are stored by the manager
}

}  // namespace sos::mw
