#include "mw/schemes/spray_wait.hpp"

#include "util/codec.hpp"

namespace sos::mw {

std::map<pki::UserId, std::uint32_t> SprayAndWaitScheme::advertisement(
    const RoutingContext& ctx) {
  auto ad = ctx.store().summary();
  RoutingContext::merge_max(ad, ctx.unicast_dest_summary());
  return ad;
}

bool SprayAndWaitScheme::should_connect(
    const RoutingContext& ctx, const std::map<pki::UserId, std::uint32_t>& advertised) {
  for (const auto& [uid, num] : advertised)
    if (num > ctx.max_held(uid)) return true;
  return false;
}

RequestPlan SprayAndWaitScheme::plan_requests(const RoutingContext& ctx, const PeerView& peer) {
  RequestPlan plan;
  for (const auto& [uid, num] : peer.summary.entries) {
    std::uint32_t held = ctx.max_held(uid);
    if (num > held) plan.by_publisher.emplace_back(uid, held);
  }
  return plan;
}

bool SprayAndWaitScheme::peer_is_subscriber(const pki::UserId& peer,
                                            const pki::UserId& publisher) const {
  auto it = peer_subscriptions_.find(peer);
  return it != peer_subscriptions_.end() && it->second.count(publisher) > 0;
}

bool SprayAndWaitScheme::may_send(const RoutingContext& ctx, const bundle::Bundle& b,
                                  const PeerView& peer) {
  if (b.is_unicast()) return b.dest == peer.uid;
  // Delivery to an interested subscriber is always allowed and free.
  if (peer_is_subscriber(peer.uid, b.origin)) return true;
  // Relaying costs copies: only spray while more than one copy remains.
  auto it = copies_.find(b.id());
  std::uint32_t have = it == copies_.end() ? 0 : it->second;
  (void)ctx;
  return have > 1;
}

bool SprayAndWaitScheme::should_carry(const RoutingContext&, const bundle::Bundle&) {
  return true;  // carrying is how both relaying and waiting work
}

util::Bytes SprayAndWaitScheme::summary_blob(const RoutingContext& ctx) {
  // Ship our subscription list so senders can recognize us as a
  // destination (delivery copies are budget-free).
  util::Writer w;
  w.varint(ctx.subscriptions().size());
  for (const auto& uid : ctx.subscriptions()) w.raw(uid.view());
  return w.take();
}

void SprayAndWaitScheme::on_peer_blob(const pki::UserId& peer, util::ByteView blob) {
  util::Reader r(blob);
  std::uint64_t n = r.varint();
  if (n > 100000) return;
  std::set<pki::UserId> subs;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    pki::UserId uid;
    uid.bytes = r.raw_array<pki::kUserIdSize>();
    subs.insert(uid);
  }
  if (r.ok()) peer_subscriptions_[peer] = std::move(subs);
}

std::uint32_t SprayAndWaitScheme::copies_to_send(const RoutingContext&, const bundle::Bundle& b,
                                                 const PeerView& peer) {
  if (b.is_unicast() && b.dest == peer.uid) return 0;
  if (peer_is_subscriber(peer.uid, b.origin)) return 0;  // delivery copy
  auto it = copies_.find(b.id());
  std::uint32_t have = it == copies_.end() ? 0 : it->second;
  return have > 1 ? have / 2 : 0;  // binary spray: hand over floor(half)
}

void SprayAndWaitScheme::on_sent(const RoutingContext& ctx, const bundle::Bundle& b,
                                 const PeerView& peer) {
  std::uint32_t given = copies_to_send(ctx, b, peer);
  if (given == 0) return;
  auto it = copies_.find(b.id());
  if (it != copies_.end()) it->second -= given;  // keep ceil(half)
}

void SprayAndWaitScheme::on_received_copies(const bundle::BundleId& id, std::uint32_t copies) {
  copies_[id] = copies;
}

void SprayAndWaitScheme::on_published(const bundle::BundleId& id) {
  copies_[id] = initial_copies_;
}

void SprayAndWaitScheme::save_state(util::Writer& w) const {
  w.varint(copies_.size());
  for (const auto& [id, n] : copies_) {
    w.raw(id.origin.view());
    w.u32(id.msg_num);
    w.u32(n);
  }
  w.varint(peer_subscriptions_.size());
  for (const auto& [peer, subs] : peer_subscriptions_) {
    w.raw(peer.view());
    w.varint(subs.size());
    for (const auto& uid : subs) w.raw(uid.view());
  }
}

bool SprayAndWaitScheme::load_state(util::Reader& r) {
  std::uint64_t n = r.varint();
  std::map<bundle::BundleId, std::uint32_t> copies;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    bundle::BundleId id;
    id.origin.bytes = r.raw_array<pki::kUserIdSize>();
    id.msg_num = r.u32();
    copies[id] = r.u32();
  }
  std::uint64_t peers = r.varint();
  std::map<pki::UserId, std::set<pki::UserId>> peer_subs;
  for (std::uint64_t i = 0; i < peers && r.ok(); ++i) {
    pki::UserId peer;
    peer.bytes = r.raw_array<pki::kUserIdSize>();
    std::uint64_t k = r.varint();
    std::set<pki::UserId> subs;
    for (std::uint64_t j = 0; j < k && r.ok(); ++j) {
      pki::UserId uid;
      uid.bytes = r.raw_array<pki::kUserIdSize>();
      subs.insert(uid);
    }
    peer_subs[peer] = std::move(subs);
  }
  if (!r.ok()) return false;
  copies_ = std::move(copies);
  peer_subscriptions_ = std::move(peer_subs);
  return true;
}

std::uint32_t SprayAndWaitScheme::copies_left(const bundle::BundleId& id) const {
  auto it = copies_.find(id);
  return it == copies_.end() ? 0 : it->second;
}

}  // namespace sos::mw
