// Binary Spray-and-Wait (Spyropoulos et al. 2005), adapted to SOS's
// publish/subscribe model: each bundle starts with L copies at its source;
// a relay handing the bundle to another relay gives away half its budget;
// a relay down to one copy only delivers to interested subscribers (the
// "wait" phase). Interested subscribers receive delivery copies that do
// not consume budget. Added here as the configurable third scheme the
// paper's modular routing manager invites.
#pragma once

#include <map>
#include <set>

#include "mw/routing.hpp"

namespace sos::mw {

class SprayAndWaitScheme : public RoutingScheme {
 public:
  explicit SprayAndWaitScheme(std::uint32_t initial_copies = 8)
      : initial_copies_(initial_copies) {}

  std::string name() const override { return "spray"; }

  std::map<pki::UserId, std::uint32_t> advertisement(const RoutingContext& ctx) override;
  bool should_connect(const RoutingContext& ctx,
                      const std::map<pki::UserId, std::uint32_t>& advertised) override;
  RequestPlan plan_requests(const RoutingContext& ctx, const PeerView& peer) override;
  bool may_send(const RoutingContext& ctx, const bundle::Bundle& b,
                const PeerView& peer) override;
  bool should_carry(const RoutingContext& ctx, const bundle::Bundle& b) override;

  util::Bytes summary_blob(const RoutingContext& ctx) override;
  void on_peer_blob(const pki::UserId& peer, util::ByteView blob) override;
  std::uint32_t copies_to_send(const RoutingContext& ctx, const bundle::Bundle& b,
                               const PeerView& peer) override;
  void on_sent(const RoutingContext& ctx, const bundle::Bundle& b,
               const PeerView& peer) override;
  void on_received_copies(const bundle::BundleId& id, std::uint32_t copies) override;
  void on_published(const bundle::BundleId& id) override;

  void save_state(util::Writer& w) const override;
  bool load_state(util::Reader& r) override;

  std::uint32_t copies_left(const bundle::BundleId& id) const;

 private:
  bool peer_is_subscriber(const pki::UserId& peer, const pki::UserId& publisher) const;

  std::uint32_t initial_copies_;
  std::map<bundle::BundleId, std::uint32_t> copies_;
  std::map<pki::UserId, std::set<pki::UserId>> peer_subscriptions_;
};

}  // namespace sos::mw
