#include "mw/schemes/epidemic.hpp"

namespace sos::mw {

std::map<pki::UserId, std::uint32_t> EpidemicScheme::advertisement(const RoutingContext& ctx) {
  auto ad = ctx.store().summary();
  RoutingContext::merge_max(ad, ctx.unicast_dest_summary());
  return ad;
}

bool EpidemicScheme::should_connect(const RoutingContext& ctx,
                                    const std::map<pki::UserId, std::uint32_t>& advertised) {
  for (const auto& [uid, num] : advertised)
    if (num > ctx.max_held(uid)) return true;
  return false;
}

RequestPlan EpidemicScheme::plan_requests(const RoutingContext& ctx, const PeerView& peer) {
  RequestPlan plan;
  for (const auto& [uid, num] : peer.summary.entries) {
    std::uint32_t held = ctx.max_held(uid);
    if (num > held) plan.by_publisher.emplace_back(uid, held);
  }
  return plan;
}

bool EpidemicScheme::may_send(const RoutingContext&, const bundle::Bundle&, const PeerView&) {
  return true;  // replicate to anyone who asks
}

bool EpidemicScheme::should_carry(const RoutingContext&, const bundle::Bundle&) {
  return true;  // carry everything
}

}  // namespace sos::mw
