#include "mw/schemes/interest_based.hpp"

namespace sos::mw {

std::map<pki::UserId, std::uint32_t> InterestBasedScheme::advertisement(
    const RoutingContext& ctx) {
  // Everything carried is, by construction, either self-authored or from a
  // subscribed publisher — advertise it all, plus "mail waiting" entries
  // keyed by destination for carried unicast bundles.
  auto ad = ctx.store().summary();
  RoutingContext::merge_max(ad, ctx.unicast_dest_summary());
  return ad;
}

bool InterestBasedScheme::should_connect(
    const RoutingContext& ctx, const std::map<pki::UserId, std::uint32_t>& advertised) {
  // Connect when the peer advertises something newer from a publisher this
  // user follows (Fig 2b: Bob is interested in Alice's messages), or when
  // it signals mail waiting for this user.
  for (const auto& [uid, num] : advertised) {
    if (ctx.subscribed_to(uid) && num > ctx.max_held(uid)) return true;
    if (uid == ctx.self()) return true;
  }
  return false;
}

RequestPlan InterestBasedScheme::plan_requests(const RoutingContext& ctx, const PeerView& peer) {
  RequestPlan plan;
  for (const auto& [uid, num] : peer.summary.entries) {
    if (!ctx.subscribed_to(uid)) continue;
    std::uint32_t held = ctx.max_held(uid);
    if (num > held) plan.by_publisher.emplace_back(uid, held);
  }
  // Unicast addressed to this user is always interesting.
  for (const auto& u : peer.summary.unicast)
    if (u.dest == ctx.self() && !ctx.store().contains(u.id)) plan.by_id.push_back(u.id);
  return plan;
}

bool InterestBasedScheme::may_send(const RoutingContext&, const bundle::Bundle& b,
                                   const PeerView& peer) {
  // Peers only request publishers they follow, so posts may flow; unicast
  // only goes to its destination under IB.
  if (b.is_unicast()) return b.dest == peer.uid;
  return true;
}

bool InterestBasedScheme::should_carry(const RoutingContext& ctx, const bundle::Bundle& b) {
  // Become a forwarder only for publishers this user subscribes to.
  return !b.is_unicast() && ctx.subscribed_to(b.origin);
}

}  // namespace sos::mw
