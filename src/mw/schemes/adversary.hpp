// Adversarial routing behavior for the fault-injection layer: a blackhole
// node pulls every bundle it can reach (epidemic-greedy requests) and then
// sinks them — it advertises nothing and serves nothing, so every copy it
// absorbs is a copy the honest network lost. Grayhole behavior lives at the
// radio layer instead (FaultPlan::frame_fault silently drops a fraction of
// the node's outbound frames), so its losses land in wire counters.
#pragma once

#include "mw/routing.hpp"

namespace sos::mw {

class BlackholeScheme : public RoutingScheme {
 public:
  std::string name() const override { return "blackhole"; }

  /// Advertise nothing: honest browsers see an empty dictionary and skip
  /// us, but we still browse and pull from them.
  std::map<pki::UserId, std::uint32_t> advertisement(const RoutingContext& ctx) override;
  /// Connect to anyone with anything at all.
  bool should_connect(const RoutingContext& ctx,
                      const std::map<pki::UserId, std::uint32_t>& advertised) override;
  /// Request everything we do not yet hold (maximal absorption).
  RequestPlan plan_requests(const RoutingContext& ctx, const PeerView& peer) override;
  /// Serve nothing, ever.
  bool may_send(const RoutingContext& ctx, const bundle::Bundle& b,
                const PeerView& peer) override;
  /// Carry (absorb) everything — the point is to hold copies hostage.
  bool should_carry(const RoutingContext& ctx, const bundle::Bundle& b) override;
};

}  // namespace sos::mw
