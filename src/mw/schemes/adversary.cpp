#include "mw/schemes/adversary.hpp"

namespace sos::mw {

std::map<pki::UserId, std::uint32_t> BlackholeScheme::advertisement(const RoutingContext&) {
  return {};
}

bool BlackholeScheme::should_connect(const RoutingContext&,
                                     const std::map<pki::UserId, std::uint32_t>& advertised) {
  return !advertised.empty();
}

RequestPlan BlackholeScheme::plan_requests(const RoutingContext& ctx, const PeerView& peer) {
  RequestPlan plan;
  for (const auto& [uid, num] : peer.summary.entries) {
    std::uint32_t held = ctx.max_held(uid);
    if (num > held) plan.by_publisher.emplace_back(uid, held);
  }
  return plan;
}

bool BlackholeScheme::may_send(const RoutingContext&, const bundle::Bundle&, const PeerView&) {
  return false;
}

bool BlackholeScheme::should_carry(const RoutingContext&, const bundle::Bundle&) {
  return true;
}

}  // namespace sos::mw
