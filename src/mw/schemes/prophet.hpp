// PRoPHET (Lindgren et al., RFC 6693 style) for unicast bundles: nodes
// maintain per-destination delivery predictabilities updated on encounters
// (direct boost, aging, transitivity) and forward a bundle only to peers
// with a higher predictability for its destination. Predictability tables
// travel in the summary's scheme blob. Demonstrates a third-party research
// scheme plugging into the routing manager without touching blue layers.
#pragma once

#include <map>

#include "mw/routing.hpp"

namespace sos::mw {

struct ProphetParams {
  double p_init = 0.75;   // direct-encounter boost
  double beta = 0.25;     // transitivity weight
  double gamma = 0.98;    // aging factor per time unit
  double age_unit_s = 1800.0;
  /// Predictabilities decayed below this are dropped from the table (and
  /// transitive candidates below it are never inserted). Without a floor a
  /// month-long run ages entries into denormals — gamma^(30d/age_unit) ~=
  /// 5e-13 — that still cost 18 bytes each in every summary blob forever,
  /// and the transitive update used to create permanent 0.0 entries for
  /// every destination any peer had ever heard of. An absent entry and a
  /// floored entry behave identically in every forwarding comparison.
  double p_floor = 1e-9;
};

class ProphetScheme : public RoutingScheme {
 public:
  explicit ProphetScheme(ProphetParams params = {}) : params_(params) {}

  std::string name() const override { return "prophet"; }

  std::map<pki::UserId, std::uint32_t> advertisement(const RoutingContext& ctx) override;
  bool should_connect(const RoutingContext& ctx,
                      const std::map<pki::UserId, std::uint32_t>& advertised) override;
  RequestPlan plan_requests(const RoutingContext& ctx, const PeerView& peer) override;
  bool may_send(const RoutingContext& ctx, const bundle::Bundle& b,
                const PeerView& peer) override;
  bool should_carry(const RoutingContext& ctx, const bundle::Bundle& b) override;

  util::Bytes summary_blob(const RoutingContext& ctx) override;
  void on_peer_blob(const pki::UserId& peer, util::ByteView blob) override;
  void on_encounter(const RoutingContext& ctx, const pki::UserId& peer) override;

  void save_state(util::Writer& w) const override;
  bool load_state(util::Reader& r) override;

  /// Current delivery predictability toward `dest`.
  double predictability(const pki::UserId& dest) const;
  /// Live table size (soak metrics: bounded by the pruning floor).
  std::size_t table_size() const { return pred_.size(); }

 private:
  void age(util::SimTime now);
  double peer_predictability(const pki::UserId& peer, const pki::UserId& dest) const;

  ProphetParams params_;
  std::map<pki::UserId, double> pred_;
  std::map<pki::UserId, std::map<pki::UserId, double>> peer_tables_;
  util::SimTime last_age_ = 0;
};

}  // namespace sos::mw
