// Routing manager — the orange layer's host. Owns the active scheme and
// drives the dissemination protocol of Fig 2b / Fig 3 by consulting it:
// advertise -> (peer browses, connects) -> summary exchange -> request ->
// bundle transfer -> verify -> store -> re-advertise. Schemes can be
// swapped at runtime ("toggle between DTN routing schemes inside the
// application", §VII).
#pragma once

#include <functional>
#include <memory>
#include <set>

#include "mw/message_manager.hpp"
#include "mw/routing.hpp"

namespace sos::mw {

class RoutingManager {
 public:
  RoutingManager(sim::Scheduler& sched, MessageManager& msgs, NodeStats& stats,
                 std::unique_ptr<RoutingScheme> scheme);

  /// Swap the active scheme (the paper's user-facing toggle).
  void set_scheme(std::unique_ptr<RoutingScheme> scheme);
  RoutingScheme& scheme() { return *scheme_; }

  // --- subscriptions (maintained by the application layer) ----------------
  void follow(const pki::UserId& uid);
  void unfollow(const pki::UserId& uid);
  const std::set<pki::UserId>& subscriptions() const { return subscriptions_; }

  /// Application publish entry point: store own bundle, refresh the
  /// advertisement, and push updated summaries to co-located peers.
  void publish(bundle::Bundle b);

  /// Kick off periodic maintenance (store expiry + advertisement refresh).
  void start(util::SimTime maintenance_interval = 600.0);

  // --- scheduler rebinding (episode-partitioned replay) -------------------
  /// Cancel the pending maintenance tick / summary push on the current
  /// scheduler, remembering their absolute deadlines.
  void detach();
  /// Re-arm them at the same deadlines on a new scheduler shard.
  void attach(sim::Scheduler& sched);

  // --- checkpointing (soak harness) ----------------------------------------
  /// Serialize subscriptions, timer deadlines and the scheme's mutable state
  /// (as an opaque blob). Only callable at a quiescent cut while detached —
  /// the per-session peer views must already be empty. The maintenance
  /// interval and debounce knobs are configuration and stay with the owner.
  void save_state(util::Writer& w) const;
  /// Mirror of save_state; call while detached (the restored deadlines are
  /// re-armed by the next attach()). Returns false on malformed input
  /// leaving the manager untouched.
  bool load_state(util::Reader& r);

  /// Recompute and install the plain-text advertisement.
  void refresh_advertisement();

  /// Delivered to the application: a verified bundle this user wants
  /// (posts from followed publishers, or unicast addressed to this user).
  std::function<void(const bundle::Bundle&, const pki::Certificate&)> on_deliver;

  /// Fired for every fresh verified bundle this node stores (deliveries and
  /// relayed carries alike) — the evaluation oracle's dissemination hook.
  std::function<void(const bundle::Bundle&)> on_carry;

 private:
  RoutingContext ctx() const;
  void handle_advert(sim::PeerId peer, const std::map<pki::UserId, std::uint32_t>& advert);
  void handle_session_ready(sim::PeerId peer, const pki::UserId& uid);
  void handle_summary(sim::PeerId peer, const SummaryFrame& summary);
  void handle_request(sim::PeerId peer, const RequestFrame& request);
  void handle_bundle(sim::PeerId peer, bundle::Bundle b, const pki::Certificate& origin_cert,
                     std::uint32_t spray_copies);
  SummaryFrame build_summary();
  void push_summaries();
  void maintenance_tick();
  void schedule_maintenance();
  void schedule_push();
  bool wanted_by_app(const bundle::Bundle& b) const;

  sim::Scheduler* sched_;  // rebindable: see detach()/attach()
  MessageManager& msgs_;
  // sos-lint: allow(seam-exempt) reference to node-lifetime stats storage,
  // no scheduler coupling.
  NodeStats& stats_;
  std::unique_ptr<RoutingScheme> scheme_;
  std::set<pki::UserId> subscriptions_;
  // sos-lint: allow(seam-exempt) keyed by live sessions, torn down on
  // session drop (not detach): secure peer state survives shard boundaries
  // by design, same lifecycle as MessageManager::session_users_.
  std::map<sim::PeerId, PeerView> peers_;  // secure peers with summaries
  bool push_pending_ = false;              // coalesces summary gossip
  // sos-lint: allow(seam-exempt) scenario-constant debounce knob.
  util::SimTime push_debounce_s_ = 1.0;
  util::SimTime push_at_ = 0.0;            // absolute deadline while pending
  sim::EventId push_event_ = sim::kInvalidEventId;  // armed while push_pending_
  util::SimTime maintenance_interval_ = 0.0;  // 0 = periodic sweep disabled
  util::SimTime next_maintenance_at_ = 0.0;   // absolute, while interval > 0
  sim::EventId maintenance_event_ = sim::kInvalidEventId;  // armed while interval > 0
};

}  // namespace sos::mw
