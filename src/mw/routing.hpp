// The routing-scheme interface — the orange layer of Fig 1. Schemes see a
// deliberately narrow RoutingContext (own identity, subscriptions, bundle
// store, clock) and make five kinds of decisions; everything else (security,
// discovery, connection management, transfer bookkeeping) lives in the blue
// managers that schemes cannot touch. The paper's point is that this makes a
// scheme tiny: Epidemic and Interest-Based below are each well under 100
// lines, matching the "<100 lines of Swift" claim.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bundle/bundle.hpp"
#include "bundle/store.hpp"
#include "mw/wire.hpp"
#include "util/time.hpp"

namespace sos::util {
class Writer;
class Reader;
}  // namespace sos::util

namespace sos::mw {

/// Read-only view of the local node handed to every scheme call.
class RoutingContext {
 public:
  RoutingContext(const pki::UserId& self, const std::set<pki::UserId>& subscriptions,
                 const bundle::BundleStore& store, util::SimTime now)
      : self_(self), subscriptions_(subscriptions), store_(store), now_(now) {}

  const pki::UserId& self() const { return self_; }
  /// Publishers the local user follows (the app layer maintains this set).
  const std::set<pki::UserId>& subscriptions() const { return subscriptions_; }
  bool subscribed_to(const pki::UserId& uid) const { return subscriptions_.count(uid) > 0; }
  const bundle::BundleStore& store() const { return store_; }
  util::SimTime now() const { return now_; }

  /// Highest message number held for a publisher (0 if none).
  std::uint32_t max_held(const pki::UserId& uid) const {
    const auto& s = store_.summary();
    auto it = s.find(uid);
    return it == s.end() ? 0 : it->second;
  }

  /// Carried unicast bundles keyed by *destination*: the advertisement
  /// entry that tells a passing destination "I have mail for you".
  std::map<pki::UserId, std::uint32_t> unicast_dest_summary() const {
    std::map<pki::UserId, std::uint32_t> out;
    if (store_.unicast_count() == 0) return out;  // all-pub/sub fast path
    for (const auto* stored : store_.all()) {
      if (!stored->bundle.is_unicast()) continue;
      auto& max = out[stored->bundle.dest];
      if (stored->bundle.msg_num > max) max = stored->bundle.msg_num;
    }
    return out;
  }

  /// Merge helper for advertisements (keeps the larger number on clash).
  static void merge_max(std::map<pki::UserId, std::uint32_t>& into,
                        const std::map<pki::UserId, std::uint32_t>& from) {
    for (const auto& [uid, num] : from) {
      auto& slot = into[uid];
      if (num > slot) slot = num;
    }
  }

 private:
  const pki::UserId& self_;
  const std::set<pki::UserId>& subscriptions_;
  const bundle::BundleStore& store_;
  util::SimTime now_;
};

/// Authenticated view of a connected peer after the summary exchange.
struct PeerView {
  pki::UserId uid;  // from the verified certificate
  SummaryFrame summary;
};

struct RequestPlan {
  std::vector<std::pair<pki::UserId, std::uint32_t>> by_publisher;  // (uid, since)
  std::vector<bundle::BundleId> by_id;
  bool empty() const { return by_publisher.empty() && by_id.empty(); }
};

class RoutingScheme {
 public:
  virtual ~RoutingScheme() = default;
  virtual std::string name() const = 0;

  /// Entries for the plain-text advertisement and the in-session summary:
  /// which (publisher -> latest number) pairs this node serves.
  virtual std::map<pki::UserId, std::uint32_t> advertisement(const RoutingContext& ctx) = 0;

  /// Browse-side decision: is the advertised dictionary interesting enough
  /// to spend a connection on? (Fig 2b: "browsing node decides whether it
  /// should request a connection".)
  virtual bool should_connect(const RoutingContext& ctx,
                              const std::map<pki::UserId, std::uint32_t>& advertised) = 0;

  /// Build the request after receiving the peer's in-session summary.
  virtual RequestPlan plan_requests(const RoutingContext& ctx, const PeerView& peer) = 0;

  /// Sender-side filter: may this stored bundle go to this peer?
  virtual bool may_send(const RoutingContext& ctx, const bundle::Bundle& b,
                        const PeerView& peer) = 0;

  /// Receiver-side decision: store-and-carry (become a forwarder) or not.
  /// Bundles useful to the local user are delivered to the app either way.
  virtual bool should_carry(const RoutingContext& ctx, const bundle::Bundle& b) = 0;

  // --- optional hooks ------------------------------------------------------

  /// Opaque state shipped inside our summary (PRoPHET predictability).
  virtual util::Bytes summary_blob(const RoutingContext& ctx) {
    (void)ctx;
    return {};
  }
  /// Peer's blob from their summary.
  virtual void on_peer_blob(const pki::UserId& peer, util::ByteView blob) {
    (void)peer;
    (void)blob;
  }
  /// A secure session to `peer` just came up.
  virtual void on_encounter(const RoutingContext& ctx, const pki::UserId& peer) {
    (void)ctx;
    (void)peer;
  }
  /// Copy budget to hand over with this bundle (Spray-and-Wait); 0 = n/a.
  virtual std::uint32_t copies_to_send(const RoutingContext& ctx, const bundle::Bundle& b,
                                       const PeerView& peer) {
    (void)ctx;
    (void)b;
    (void)peer;
    return 0;
  }
  /// Called after a bundle was handed to the session layer for `peer`.
  virtual void on_sent(const RoutingContext& ctx, const bundle::Bundle& b,
                       const PeerView& peer) {
    (void)ctx;
    (void)b;
    (void)peer;
  }
  /// Called when a bundle arrives carrying a copy budget.
  virtual void on_received_copies(const bundle::BundleId& id, std::uint32_t copies) {
    (void)id;
    (void)copies;
  }
  /// Copy budget for a bundle this node originates.
  virtual void on_published(const bundle::BundleId& id) { (void)id; }

  // --- checkpoint seam -----------------------------------------------------

  /// Serialize the scheme's mutable state (soak checkpoints). Stateless
  /// schemes (epidemic, interest, direct, blackhole) have nothing to save;
  /// stateful ones (prophet, spray) override both hooks. Configuration
  /// (ProphetParams, initial copy counts) is NOT serialized — it is rebuilt
  /// from the scenario config on resume.
  virtual void save_state(util::Writer& w) const { (void)w; }
  /// Restore state written by save_state. Returns false on malformed input.
  virtual bool load_state(util::Reader& r) {
    (void)r;
    return true;
  }
};

/// Factory for the built-in schemes: "epidemic", "interest", "spray",
/// "prophet", "direct". Returns nullptr for unknown names.
std::unique_ptr<RoutingScheme> make_scheme(const std::string& name);

}  // namespace sos::mw
