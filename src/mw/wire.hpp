// Wire frames exchanged between two SOS middleware instances over a D2D
// session. Only Hello travels in plain text (it carries the certificate
// that bootstraps the encrypted channel, mirroring Fig 2b/3); every other
// frame is sealed by the ad hoc manager's session AEAD.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "bundle/bundle.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/x25519.hpp"
#include "pki/certificate.hpp"
#include "util/bytes.hpp"

namespace sos::mw {

enum class FrameType : std::uint8_t {
  Hello = 1,       // plaintext: certificate + ephemeral key + binding sig
  Summary = 2,     // sealed: store summary + scheme blob (Fig 2b step 2)
  Request = 3,     // sealed: what the browser wants (Fig 2b step 3)
  BundleData = 4,  // sealed: bundle + origin certificate (Fig 3b)
  Resume = 5,      // plaintext: 1-RTT session resumption proof (recurring
                   // contacts skip the cert exchange + X25519)
};

/// First frame on a new session, both directions.
struct HelloFrame {
  util::Bytes certificate;           // encoded pki::Certificate
  crypto::X25519Key ephemeral_pub{}; // fresh per-session X25519 public key
  crypto::EdSignature binding_sig{}; // cert key's signature over the eph key

  util::Bytes signing_bytes() const;
  util::Bytes encode() const;
  static std::optional<HelloFrame> decode(util::ByteView data);
};

/// Session resumption (FrameType::Resume), sent instead of Hello when the
/// sender holds a cached resumption secret for the peer from an earlier
/// full handshake. Travels in plain text like Hello: it carries no secret
/// material, only the sender's certificate fingerprint (so the receiver can
/// find the shared secret), a fresh nonce, and an HMAC proof of secret
/// possession. Both sides send one; session keys come from
/// HKDF(nonce_a || nonce_b, secret) — zero X25519 operations.
struct ResumeFrame {
  std::array<std::uint8_t, 32> fingerprint{};  // SHA-256 of sender's certificate
  std::array<std::uint8_t, 32> nonce{};        // fresh per resume attempt
  std::array<std::uint8_t, 32> proof{};        // HMAC-SHA256(secret, signing_bytes())

  /// Bytes covered by the HMAC proof (domain tag + fingerprint + nonce).
  util::Bytes signing_bytes() const;
  util::Bytes encode() const;
  static std::optional<ResumeFrame> decode(util::ByteView data);
};

/// In-session store summary. `entries` is the same UserID->MessageNumber
/// dictionary the plain-text advertisement carries; `unicast` lists
/// direct-message bundles with their destinations so unicast schemes can
/// make per-destination decisions; `scheme_blob` is opaque scheme state
/// (PRoPHET ships its delivery-predictability table here).
struct SummaryFrame {
  std::map<pki::UserId, std::uint32_t> entries;
  struct UnicastEntry {
    bundle::BundleId id;
    pki::UserId dest;
  };
  std::vector<UnicastEntry> unicast;
  util::Bytes scheme_blob;

  util::Bytes encode() const;
  static std::optional<SummaryFrame> decode(util::ByteView data);
};

/// What the requesting side wants: per-publisher "everything newer than N"
/// plus individually addressed bundles (unicast routing).
struct RequestFrame {
  std::vector<std::pair<pki::UserId, std::uint32_t>> by_publisher;
  std::vector<bundle::BundleId> by_id;

  bool empty() const { return by_publisher.empty() && by_id.empty(); }
  util::Bytes encode() const;
  static std::optional<RequestFrame> decode(util::ByteView data);
};

/// One bundle in flight, accompanied by the origin's certificate so the
/// receiver can authenticate provenance offline (Fig 3b: Bob forwards
/// Alice's certificate to Carol).
struct BundleDataFrame {
  util::Bytes bundle;       // encoded bundle::Bundle
  util::Bytes origin_cert;  // encoded pki::Certificate of the publisher
  std::uint32_t spray_copies = 0;  // Spray-and-Wait copy budget (0 = n/a)

  util::Bytes encode() const;
  static std::optional<BundleDataFrame> decode(util::ByteView data);
};

}  // namespace sos::mw
