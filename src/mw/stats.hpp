// Per-node counters surfaced by the middleware; the evaluation harness and
// the security tests read these.
#pragma once

#include <cstdint>

namespace sos::mw {

struct NodeStats {
  // ad hoc manager
  std::uint64_t sessions_established = 0;      // full handshakes + resumes
  std::uint64_t sessions_lost = 0;
  std::uint64_t full_handshakes = 0;           // cert exchange + X25519 + HKDF
  std::uint64_t sessions_resumed = 0;          // 1-RTT resumes (no X25519)
  std::uint64_t resume_attempts = 0;           // Resume frames sent
  std::uint64_t resume_rejected = 0;           // unknown/expired/bad-proof resumes
  std::uint64_t ecdh_ops = 0;                  // X25519 scalar mults by the handshake
  std::uint64_t handshake_cert_rejected = 0;   // invalid/revoked/expired cert
  std::uint64_t handshake_sig_rejected = 0;    // bad ephemeral-key binding
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t decrypt_failures = 0;
  std::uint64_t malformed_frames = 0;

  // message manager / routing
  std::uint64_t bundles_sent = 0;
  std::uint64_t bundles_received = 0;
  std::uint64_t bundle_sig_rejected = 0;
  std::uint64_t bundle_cert_rejected = 0;
  std::uint64_t bundle_sig_cache_hits = 0;     // re-receptions skipping verify
  std::uint64_t bundle_sig_cache_misses = 0;   // full signature verifications
  std::uint64_t bundle_batch_verifies = 0;     // batch passes executed
  std::uint64_t bundle_batch_fallbacks = 0;    // batches with a bad signature
  std::uint64_t duplicates_ignored = 0;
  std::uint64_t bundles_carried = 0;       // stored for forwarding
  std::uint64_t deliveries = 0;            // handed to the application
  std::uint64_t transfers_interrupted = 0; // queue dropped with the session

  // app layer
  std::uint64_t published = 0;
  std::uint64_t reboots = 0;  // power cycles (fault-injection churn)
};

}  // namespace sos::mw
