#include "mw/sos_node.hpp"

#include <cassert>
#include <cstring>

#include "crypto/aead.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/x25519.hpp"
#include "mw/schemes/adversary.hpp"
#include "mw/schemes/direct.hpp"
#include "mw/schemes/epidemic.hpp"
#include "mw/schemes/interest_based.hpp"
#include "mw/schemes/prophet.hpp"
#include "mw/schemes/spray_wait.hpp"
#include "util/codec.hpp"

namespace sos::mw {

namespace {
// NodeStats has no behavior of its own; serialize the counters in
// declaration order so the checkpoint layout is stable and reviewable.
void save_stats(util::Writer& w, const NodeStats& s) {
  const std::uint64_t counters[] = {
      s.sessions_established, s.sessions_lost, s.full_handshakes, s.sessions_resumed,
      s.resume_attempts, s.resume_rejected, s.ecdh_ops, s.handshake_cert_rejected,
      s.handshake_sig_rejected, s.frames_sent, s.frames_received, s.decrypt_failures,
      s.malformed_frames, s.bundles_sent, s.bundles_received, s.bundle_sig_rejected,
      s.bundle_cert_rejected, s.bundle_sig_cache_hits, s.bundle_sig_cache_misses,
      s.bundle_batch_verifies, s.bundle_batch_fallbacks, s.duplicates_ignored,
      s.bundles_carried, s.deliveries, s.transfers_interrupted, s.published, s.reboots};
  for (std::uint64_t c : counters) w.u64(c);
}

bool load_stats(util::Reader& r, NodeStats& s) {
  NodeStats t;
  std::uint64_t* counters[] = {
      &t.sessions_established, &t.sessions_lost, &t.full_handshakes, &t.sessions_resumed,
      &t.resume_attempts, &t.resume_rejected, &t.ecdh_ops, &t.handshake_cert_rejected,
      &t.handshake_sig_rejected, &t.frames_sent, &t.frames_received, &t.decrypt_failures,
      &t.malformed_frames, &t.bundles_sent, &t.bundles_received, &t.bundle_sig_rejected,
      &t.bundle_cert_rejected, &t.bundle_sig_cache_hits, &t.bundle_sig_cache_misses,
      &t.bundle_batch_verifies, &t.bundle_batch_fallbacks, &t.duplicates_ignored,
      &t.bundles_carried, &t.deliveries, &t.transfers_interrupted, &t.published, &t.reboots};
  for (std::uint64_t* c : counters) *c = r.u64();
  if (!r.ok()) return false;
  s = t;
  return true;
}
}  // namespace

std::unique_ptr<RoutingScheme> make_scheme(const std::string& name) {
  if (name == "epidemic") return std::make_unique<EpidemicScheme>();
  if (name == "interest") return std::make_unique<InterestBasedScheme>();
  if (name == "spray") return std::make_unique<SprayAndWaitScheme>();
  if (name == "prophet") return std::make_unique<ProphetScheme>();
  if (name == "direct") return std::make_unique<DirectDeliveryScheme>();
  if (name == "blackhole") return std::make_unique<BlackholeScheme>();
  return nullptr;
}

SosNode::SosNode(sim::Scheduler& sched, sim::MpcEndpoint& endpoint, pki::DeviceCredentials creds,
                 SosConfig config)
    : sched_(&sched), creds_(std::move(creds)), config_(std::move(config)) {
  adhoc_ = std::make_unique<AdHocManager>(sched, endpoint, creds_, stats_);
  // The verified-bundle cache only needs to cover what can be re-received,
  // which is bounded by what peers can still be carrying: the store size.
  adhoc_->set_verify_cache_capacity(config_.store_capacity);
  adhoc_->set_resume_cache_capacity(config_.resume_cache_capacity);
  adhoc_->set_resume_lifetime(config_.resume_lifetime_s);
  adhoc_->set_verify_signatures(config_.verify_signatures);
  msgs_ = std::make_unique<MessageManager>(*adhoc_, stats_, config_.store_capacity);
  msgs_->set_verify_batch_window(config_.verify_batch_window_s);
  msgs_->set_verify_batch_adaptive(config_.verify_batch_adaptive, config_.verify_batch_max_queue);
  auto scheme = make_scheme(config_.scheme);
  if (!scheme) scheme = std::make_unique<InterestBasedScheme>();
  routing_ = std::make_unique<RoutingManager>(sched, *msgs_, stats_, std::move(scheme));
  routing_->on_deliver = [this](const bundle::Bundle& b, const pki::Certificate& cert) {
    if (on_data) on_data(b, cert);
  };
  routing_->on_carry = [this](const bundle::Bundle& b) {
    if (on_carry) on_carry(b);
  };
}

void SosNode::start() {
  adhoc_->start();
  routing_->start(config_.maintenance_interval_s);
}

void SosNode::detach() {
  // Live sessions cannot outlive their transport: drop them while the full
  // stack is still attached, so the session-down cascade (routing cleanup,
  // adaptive verify flush) runs with a working scheduler. Quiescent
  // detaches — episode boundaries — make this a no-op.
  adhoc_->drop_live_sessions();
  // Order matters: the message manager cancels its pending flush through
  // the ad hoc manager's scheduler, so it must detach first; same for the
  // routing manager's timers.
  msgs_->detach();
  routing_->detach();
  adhoc_->detach();
  sched_ = nullptr;
}

void SosNode::attach(sim::Scheduler& sched, sim::MpcEndpoint& endpoint) {
  sched_ = &sched;
  adhoc_->attach(sched, endpoint);
  msgs_->attach();
  routing_->attach(sched);
}

bool SosNode::attached() const {
  return sched_ != nullptr;
}

void SosNode::save_state(util::Writer& w) const {
  assert(!attached());
  w.u32(next_msg_num_);
  save_stats(w, stats_);
  {
    util::Writer sub;
    adhoc_->save_state(sub);
    w.bytes(sub.take());
  }
  {
    util::Writer sub;
    msgs_->save_state(sub);
    w.bytes(sub.take());
  }
  {
    util::Writer sub;
    routing_->save_state(sub);
    w.bytes(sub.take());
  }
}

bool SosNode::load_state(util::Reader& r) {
  assert(!attached());
  std::uint32_t next_msg_num = r.u32();
  NodeStats stats;
  if (!load_stats(r, stats)) return false;
  util::Bytes adhoc_blob = r.bytes();
  util::Bytes msgs_blob = r.bytes();
  util::Bytes routing_blob = r.bytes();
  if (!r.ok()) return false;
  {
    util::Reader sub{util::ByteView(adhoc_blob)};
    if (!adhoc_->load_state(sub) || !sub.done()) return false;
  }
  {
    util::Reader sub{util::ByteView(msgs_blob)};
    if (!msgs_->load_state(sub) || !sub.done()) return false;
  }
  {
    util::Reader sub{util::ByteView(routing_blob)};
    if (!routing_->load_state(sub) || !sub.done()) return false;
  }
  next_msg_num_ = next_msg_num;
  stats_ = stats;
  return true;
}

void SosNode::reboot(bool lose_store, bool lose_resume_cache) {
  // Any session still live dies with the power (the fault plan clips
  // contacts out of down-windows, so this is normally a no-op); the drop
  // cascade must run while the full stack still has its RAM state.
  adhoc_->drop_live_sessions();
  msgs_->reset_after_reboot(lose_store);
  adhoc_->reset_after_reboot(lose_resume_cache);
  // Come back up advertising whatever survived in the store.
  routing_->refresh_advertisement();
  ++stats_.reboots;
}

bool SosNode::set_scheme(const std::string& name) {
  auto scheme = make_scheme(name);
  if (!scheme) return false;
  routing_->set_scheme(std::move(scheme));
  return true;
}

bundle::BundleId SosNode::publish(util::Bytes payload, bundle::ContentType type) {
  bundle::Bundle b;
  b.origin = creds_.user_id;
  b.msg_num = next_msg_num_++;
  b.creation_ts = sched_->now();
  b.lifetime_s = config_.bundle_lifetime_s;
  b.content = type;
  b.payload = std::move(payload);
  b.sign(creds_.signing_keypair);
  // Forged-signature storm: a real signing pass, then one flipped byte —
  // structurally valid, cryptographically worthless.
  if (config_.forge_signatures) b.signature[0] ^= 0x5a;
  bundle::BundleId id = b.id();
  routing_->publish(std::move(b));
  return id;
}

namespace {
constexpr std::size_t kDmOverhead = crypto::kX25519KeySize + crypto::kAeadTagSize;

util::Bytes derive_dm_key(const crypto::X25519Key& shared, const crypto::X25519Key& eph_pub,
                          const crypto::X25519Key& dest_pub) {
  auto salt = util::concat(eph_pub, dest_pub);
  return crypto::hkdf(salt, shared, util::to_bytes("sos-dm-v1"), crypto::kAeadKeySize);
}
}  // namespace

bundle::BundleId SosNode::send_direct(const pki::Certificate& dest_cert,
                                      util::ByteView plaintext) {
  // Ephemeral-static X25519: seal for the destination's certified key.
  crypto::Drbg eph_rng(util::concat(util::to_bytes("dm-eph"), creds_.user_id.view(),
                                    util::Bytes{static_cast<std::uint8_t>(next_msg_num_),
                                                static_cast<std::uint8_t>(next_msg_num_ >> 8)}));
  auto eph_priv = crypto::x25519_clamp(eph_rng.generate_array<32>());
  auto eph_pub = crypto::x25519_base(eph_priv);
  auto shared = crypto::x25519(eph_priv, dest_cert.subject_enc_key);
  auto key = derive_dm_key(shared, eph_pub, dest_cert.subject_enc_key);

  std::uint8_t nonce[crypto::kAeadNonceSize] = {0};
  auto sealed = crypto::aead_seal(key.data(), nonce, util::to_bytes("sos-dm"), plaintext);

  bundle::Bundle b;
  b.origin = creds_.user_id;
  b.msg_num = next_msg_num_++;
  b.creation_ts = sched_->now();
  b.lifetime_s = config_.bundle_lifetime_s;
  b.content = bundle::ContentType::DirectMessage;
  b.dest = dest_cert.subject_id;
  b.payload = util::concat(eph_pub, sealed);
  b.sign(creds_.signing_keypair);
  bundle::BundleId id = b.id();
  // Remember the destination certificate so it can be forwarded (Fig 3b).
  msgs_->remember_certificate(dest_cert);
  routing_->publish(std::move(b));
  return id;
}

std::optional<util::Bytes> SosNode::open_direct(const bundle::Bundle& b) const {
  if (!(b.dest == creds_.user_id)) return std::nullopt;
  if (b.payload.size() < kDmOverhead) return std::nullopt;
  crypto::X25519Key eph_pub{};
  std::memcpy(eph_pub.data(), b.payload.data(), eph_pub.size());
  auto shared = crypto::x25519(creds_.enc_private_key, eph_pub);
  auto key = derive_dm_key(shared, eph_pub, creds_.enc_public_key);
  std::uint8_t nonce[crypto::kAeadNonceSize] = {0};
  util::ByteView sealed(b.payload.data() + eph_pub.size(), b.payload.size() - eph_pub.size());
  return crypto::aead_open(key.data(), nonce, util::to_bytes("sos-dm"), sealed);
}

}  // namespace sos::mw
