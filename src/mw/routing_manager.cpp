#include "mw/routing_manager.hpp"

#include <cassert>

#include "util/codec.hpp"

namespace sos::mw {

RoutingManager::RoutingManager(sim::Scheduler& sched, MessageManager& msgs, NodeStats& stats,
                               std::unique_ptr<RoutingScheme> scheme)
    : sched_(&sched), msgs_(msgs), stats_(stats), scheme_(std::move(scheme)) {
  msgs_.on_peer_advert = [this](sim::PeerId peer,
                                const std::map<pki::UserId, std::uint32_t>& advert) {
    handle_advert(peer, advert);
  };
  msgs_.on_session_ready = [this](sim::PeerId peer, const pki::UserId& uid) {
    handle_session_ready(peer, uid);
  };
  msgs_.on_session_down = [this](sim::PeerId peer) { peers_.erase(peer); };
  msgs_.on_summary = [this](sim::PeerId peer, const SummaryFrame& s) { handle_summary(peer, s); };
  msgs_.on_request = [this](sim::PeerId peer, const RequestFrame& r) { handle_request(peer, r); };
  msgs_.on_bundle = [this](sim::PeerId peer, bundle::Bundle b, const pki::Certificate& cert,
                           std::uint32_t copies) {
    handle_bundle(peer, std::move(b), cert, copies);
  };
}

void RoutingManager::set_scheme(std::unique_ptr<RoutingScheme> scheme) {
  scheme_ = std::move(scheme);
  refresh_advertisement();
}

void RoutingManager::follow(const pki::UserId& uid) {
  subscriptions_.insert(uid);
}

void RoutingManager::unfollow(const pki::UserId& uid) {
  subscriptions_.erase(uid);
}

RoutingContext RoutingManager::ctx() const {
  return RoutingContext(msgs_.adhoc().credentials().user_id, subscriptions_, msgs_.store(),
                        sched_->now());
}

void RoutingManager::publish(bundle::Bundle b) {
  bundle::BundleId id = b.id();
  msgs_.store().insert(std::move(b), sched_->now());
  scheme_->on_published(id);
  ++stats_.published;
  refresh_advertisement();
  push_summaries();
}

void RoutingManager::start(util::SimTime maintenance_interval) {
  refresh_advertisement();
  // A non-positive interval disables the periodic sweep (tests drain the
  // event queue to quiescence and must not see self-rescheduling timers).
  maintenance_interval_ = maintenance_interval;
  if (maintenance_interval_ > 0) {
    next_maintenance_at_ = sched_->now() + maintenance_interval_;
    schedule_maintenance();
  }
}

void RoutingManager::schedule_maintenance() {
  maintenance_event_ = sched_->schedule_at(next_maintenance_at_, [this] { maintenance_tick(); });
}

void RoutingManager::maintenance_tick() {
  if (msgs_.store().expire(sched_->now()) > 0) refresh_advertisement();
  next_maintenance_at_ = sched_->now() + maintenance_interval_;
  schedule_maintenance();
}

void RoutingManager::detach() {
  // Ids are shard-local: cancel against the departing scheduler, then reset
  // to the sentinel so a stale id can never be replayed against the next one.
  if (maintenance_interval_ > 0) {
    assert(maintenance_event_ != sim::kInvalidEventId);
    sched_->cancel(maintenance_event_);
    maintenance_event_ = sim::kInvalidEventId;
  }
  if (push_pending_) {
    assert(push_event_ != sim::kInvalidEventId);
    sched_->cancel(push_event_);
    push_event_ = sim::kInvalidEventId;
  }
  sched_ = nullptr;
}

void RoutingManager::attach(sim::Scheduler& sched) {
  sched_ = &sched;
  // Deadlines are absolute: the timers fire at exactly the sim times they
  // would have fired on the previous shard.
  if (maintenance_interval_ > 0) schedule_maintenance();
  if (push_pending_) schedule_push();
}

void RoutingManager::save_state(util::Writer& w) const {
  // Quiescent-cut contract: detached (no live timers) and no secure peers.
  assert(sched_ == nullptr && peers_.empty());
  w.varint(subscriptions_.size());
  for (const auto& uid : subscriptions_) w.raw(uid.view());
  w.u8(push_pending_ ? 1 : 0);
  w.f64(push_at_);
  w.f64(next_maintenance_at_);
  {
    util::Writer sub;
    scheme_->save_state(sub);
    w.bytes(sub.take());
  }
}

bool RoutingManager::load_state(util::Reader& r) {
  assert(sched_ == nullptr);
  std::uint64_t n = r.varint();
  std::set<pki::UserId> subs;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    pki::UserId uid;
    uid.bytes = r.raw_array<pki::kUserIdSize>();
    subs.insert(uid);
  }
  bool push_pending = r.u8() != 0;
  double push_at = r.f64();
  double next_maintenance_at = r.f64();
  util::Bytes scheme_blob = r.bytes();
  if (!r.ok()) return false;
  {
    util::Reader sub{util::ByteView(scheme_blob)};
    if (!scheme_->load_state(sub) || !sub.done()) return false;
  }
  subscriptions_ = std::move(subs);
  push_pending_ = push_pending;
  push_event_ = sim::kInvalidEventId;
  push_at_ = push_at;
  next_maintenance_at_ = next_maintenance_at;
  return true;
}

void RoutingManager::refresh_advertisement() {
  msgs_.adhoc().set_advertisement(scheme_->advertisement(ctx()));
}

SummaryFrame RoutingManager::build_summary() {
  SummaryFrame summary;
  summary.entries = scheme_->advertisement(ctx());
  if (msgs_.store().unicast_count() > 0) {
    for (const auto* stored : msgs_.store().all()) {
      if (stored->bundle.is_unicast())
        summary.unicast.push_back({stored->bundle.id(), stored->bundle.dest});
    }
  }
  summary.scheme_blob = scheme_->summary_blob(ctx());
  return summary;
}

void RoutingManager::push_summaries() {
  // Coalesce: a burst of arrivals (a whole batch pulled from one peer)
  // results in a single refreshed summary to each co-located peer, not one
  // per bundle — without this, dense clusters gossip quadratically.
  if (push_pending_) return;
  push_pending_ = true;
  push_at_ = sched_->now() + push_debounce_s_;
  schedule_push();
}

void RoutingManager::schedule_push() {
  push_event_ = sched_->schedule_at(push_at_, [this] {
    push_pending_ = false;
    push_event_ = sim::kInvalidEventId;  // consumed by firing
    for (sim::PeerId peer : msgs_.secure_peers()) msgs_.send_summary(peer, build_summary());
  });
}

void RoutingManager::handle_advert(sim::PeerId peer,
                                   const std::map<pki::UserId, std::uint32_t>& advert) {
  if (scheme_->should_connect(ctx(), advert)) msgs_.adhoc().connect(peer);
}

void RoutingManager::handle_session_ready(sim::PeerId peer, const pki::UserId& uid) {
  PeerView view;
  view.uid = uid;
  peers_[peer] = view;
  scheme_->on_encounter(ctx(), uid);
  msgs_.send_summary(peer, build_summary());
}

void RoutingManager::handle_summary(sim::PeerId peer, const SummaryFrame& summary) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;  // summary before the session registered
  it->second.summary = summary;
  scheme_->on_peer_blob(it->second.uid, summary.scheme_blob);
  RequestPlan plan = scheme_->plan_requests(ctx(), it->second);
  if (plan.empty()) return;
  RequestFrame req;
  req.by_publisher = std::move(plan.by_publisher);
  req.by_id = std::move(plan.by_id);
  msgs_.send_request(peer, req);
}

void RoutingManager::handle_request(sim::PeerId peer, const RequestFrame& request) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  const PeerView& view = it->second;

  std::vector<bundle::Bundle> to_send;
  for (const auto& [uid, since] : request.by_publisher) {
    for (auto& b : msgs_.store().newer_than(uid, since)) to_send.push_back(std::move(b));
  }
  for (const auto& id : request.by_id) {
    auto b = msgs_.store().get(id);
    if (b) to_send.push_back(std::move(*b));
  }
  for (const auto& b : to_send) {
    if (msgs_.already_sent(peer, b.id())) continue;
    if (!scheme_->may_send(ctx(), b, view)) continue;
    std::uint32_t copies = scheme_->copies_to_send(ctx(), b, view);
    if (msgs_.send_bundle(peer, b, copies)) scheme_->on_sent(ctx(), b, view);
  }
}

bool RoutingManager::wanted_by_app(const bundle::Bundle& b) const {
  const pki::UserId& self = msgs_.adhoc().credentials().user_id;
  if (b.is_unicast()) return b.dest == self;
  return subscriptions_.count(b.origin) > 0;
}

void RoutingManager::handle_bundle(sim::PeerId peer, bundle::Bundle b,
                                   const pki::Certificate& origin_cert,
                                   std::uint32_t spray_copies) {
  (void)peer;
  if (b.expired(sched_->now())) return;
  // One D2D hop completed.
  if (b.hop_count < 255) ++b.hop_count;

  bundle::BundleId id = b.id();
  bool deliver = wanted_by_app(b);
  bool carry = scheme_->should_carry(ctx(), b) || deliver;
  if (!carry) return;

  bool fresh = msgs_.store().insert(std::move(b), sched_->now());
  if (!fresh) {
    ++stats_.duplicates_ignored;
    return;
  }
  ++stats_.bundles_carried;
  scheme_->on_received_copies(id, spray_copies);
  if (on_carry) {
    auto stored = msgs_.store().get(id);
    if (stored) on_carry(*stored);
  }
  if (deliver) {
    ++stats_.deliveries;
    if (on_deliver) {
      auto stored = msgs_.store().get(id);
      if (stored) on_deliver(*stored, origin_cert);
    }
  }
  refresh_advertisement();
  push_summaries();  // co-located peers learn about the new bundle now
}

}  // namespace sos::mw
