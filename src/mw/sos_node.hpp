// SosNode — the public face of the SOS middleware. One instance runs inside
// each mobile application (the paper's non-daemon design: no jailbreak, App
// Store compliant), composing the three managers of Fig 1 behind a small
// API: publish, follow, send encrypted direct messages, pick a routing
// scheme, receive verified data.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "mw/adhoc_manager.hpp"
#include "mw/message_manager.hpp"
#include "mw/routing_manager.hpp"
#include "mw/stats.hpp"

namespace sos::mw {

struct SosConfig {
  std::string scheme = "interest";       // "epidemic", "interest", "spray", "prophet", "direct"
  std::uint32_t bundle_lifetime_s = 0;   // 0 = bundles never expire
  std::size_t store_capacity = 10000;
  util::SimTime maintenance_interval_s = 600.0;
  /// > 0: received bundles are queued this many sim-seconds and verified in
  /// one batch signature pass; 0 verifies each bundle synchronously.
  util::SimTime verify_batch_window_s = 0.0;
  /// With a window > 0: flush a peer's queued entries the moment its
  /// session drops (instead of letting them die with the transfer) and
  /// flush the whole queue when it reaches verify_batch_max_queue entries.
  /// Keeps the batched signature passes without the delivery loss a long
  /// window costs in dense cells.
  bool verify_batch_adaptive = false;
  std::size_t verify_batch_max_queue = 256;
  /// > 0: cache a resumption secret per peer after each full handshake and
  /// re-establish later contacts with a 1-RTT HMAC-proof resume — zero
  /// X25519 operations and no certificate exchange on recurring contacts.
  /// Forward secrecy for resumed sessions is bounded by this lifetime
  /// (measured from the minting full handshake). 0 disables resumption.
  util::SimTime resume_lifetime_s = 86400.0;  // one daily-routine cycle
  /// LRU bound on cached resumption secrets (distinct recurring peers).
  std::size_t resume_cache_capacity = 256;
  /// Content-verification ablation (the unsigned epidemic baseline of the
  /// disaster benches): received bundles are accepted without certificate
  /// or signature checks. Transport handshakes are untouched.
  bool verify_signatures = true;
  /// Adversarial role (forged-signature storm): every published bundle is
  /// signed and then its signature corrupted, so honest verifiers reject it
  /// while unsigned deployments spread it for free.
  bool forge_signatures = false;
};

class SosNode {
 public:
  SosNode(sim::Scheduler& sched, sim::MpcEndpoint& endpoint, pki::DeviceCredentials creds,
          SosConfig config = {});

  /// Begin advertising/browsing and periodic maintenance.
  void start();

  // --- scheduler/network rebinding (episode-partitioned replay) -----------
  /// Release the node from its scheduler and endpoint. Durable middleware
  /// state survives — bundle store, resumption cache, verify caches,
  /// routing tables, stats, pending timer deadlines — only the binding to
  /// the simulation substrate is dropped. Sessions still live at this
  /// moment are torn down first (their transport is going away; the
  /// resumption cache lets the next contact resume on the new shard);
  /// episode boundaries are quiescent by construction, so the engine never
  /// hits that path.
  void detach();
  /// Rebind to a new scheduler shard and endpoint; pending timers re-arm at
  /// their original absolute deadlines.
  void attach(sim::Scheduler& sched, sim::MpcEndpoint& endpoint);
  bool attached() const;

  // --- checkpointing (soak harness) ----------------------------------------
  /// Serialize exactly the durable state the detach()/attach() seam already
  /// enumerates — bundle store, resumption cache, verify/advert caches,
  /// routing tables, stats, pending absolute timer deadlines — plus the
  /// publish counter. Only callable while detached at a quiescent cut (no
  /// live sessions). Identity and SosConfig are not serialized: a restoring
  /// node is constructed from the same scenario inputs first.
  void save_state(util::Writer& w) const;
  /// Mirror of save_state; call while detached, then attach() re-arms every
  /// restored deadline. Returns false on malformed input; the node may have
  /// partially restored manager state in that case and must be discarded.
  bool load_state(util::Reader& r);

  /// Power cycle (fault-injection churn). Everything in RAM is lost:
  /// sessions, handshake state, verify queue/caches, certificate cache,
  /// session bookkeeping. `lose_store` additionally wipes the persisted
  /// bundle store, `lose_resume_cache` the persisted resumption secrets
  /// (kept=resume on next contact, lost=full handshake). Routing-scheme
  /// internals (PRoPHET predictability, spray counters) deliberately
  /// survive: they are small and the schemes have no reset seam — modeling
  /// them as persisted app state. Advertising restarts from the surviving
  /// store contents.
  void reboot(bool lose_store, bool lose_resume_cache);

  /// Share a replay-wide memo of signature verdicts (see
  /// crypto::VerifyMemo); per-node counters are unaffected.
  void set_verify_memo(crypto::VerifyMemo* memo) { adhoc_->set_verify_memo(memo); }

  // --- application API ------------------------------------------------------
  /// Publish a signed social post; returns its (origin, msg_num) id.
  bundle::BundleId publish(util::Bytes payload,
                           bundle::ContentType type = bundle::ContentType::SocialPost);

  /// Send an end-to-end encrypted direct message. The payload is sealed for
  /// the destination's certified X25519 key: forwarders authenticate the
  /// bundle but cannot read it.
  bundle::BundleId send_direct(const pki::Certificate& dest_cert, util::ByteView plaintext);

  /// Decrypt a received direct message (bundle.dest must be this user).
  std::optional<util::Bytes> open_direct(const bundle::Bundle& b) const;

  void follow(const pki::UserId& uid) { routing_->follow(uid); }
  void unfollow(const pki::UserId& uid) { routing_->unfollow(uid); }
  const std::set<pki::UserId>& subscriptions() const { return routing_->subscriptions(); }

  /// Swap the routing scheme by name; false for unknown names.
  bool set_scheme(const std::string& name);
  void set_scheme(std::unique_ptr<RoutingScheme> scheme) {
    routing_->set_scheme(std::move(scheme));
  }
  const std::string scheme_name() { return routing_->scheme().name(); }

  /// Verified bundle relevant to this user (followed publisher or unicast
  /// to this user), exactly once per bundle.
  std::function<void(const bundle::Bundle&, const pki::Certificate&)> on_data;

  /// Every fresh verified bundle stored by this node, including relay
  /// carries (metrics/instrumentation hook; mirrors routing().on_carry).
  std::function<void(const bundle::Bundle&)> on_carry;

  // --- introspection ----------------------------------------------------------
  const pki::DeviceCredentials& credentials() const { return creds_; }
  const pki::UserId& user_id() const { return creds_.user_id; }
  /// Message number the next publish()/send_direct() will use.
  std::uint32_t next_message_number() const { return next_msg_num_; }
  const NodeStats& stats() const { return stats_; }
  bundle::BundleStore& store() { return msgs_->store(); }
  AdHocManager& adhoc() { return *adhoc_; }
  MessageManager& messages() { return *msgs_; }
  RoutingManager& routing() { return *routing_; }

 private:
  sim::Scheduler* sched_;  // rebindable: see detach()/attach()
  // sos-lint: allow(seam-exempt) node identity/config/stats: owned value
  // state with no scheduler handles; the managers below hold references
  // into these, so they must stay put while the managers rebind around them.
  pki::DeviceCredentials creds_;
  SosConfig config_;   // sos-lint: allow(seam-exempt) see creds_
  NodeStats stats_;    // sos-lint: allow(seam-exempt) see creds_
  std::unique_ptr<AdHocManager> adhoc_;
  std::unique_ptr<MessageManager> msgs_;
  std::unique_ptr<RoutingManager> routing_;
  // sos-lint: allow(seam-exempt) monotonic publish counter: advances only
  // on app-driven publish/send calls, which never happen mid-rebind.
  std::uint32_t next_msg_num_ = 1;
};

}  // namespace sos::mw
