// Message manager — the middle blue layer of Fig 1. It owns the bundle
// store and the certificate cache, tracks which peers have live secure
// sessions, translates wire frames to/from the structures the routing
// layer consumes, and reacts to connection-state changes (a session drop
// invalidates the per-session transfer bookkeeping, so the next encounter's
// summary/request exchange resumes exactly where the transfer broke).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "bundle/store.hpp"
#include "mw/adhoc_manager.hpp"
#include "mw/stats.hpp"
#include "mw/wire.hpp"

namespace sos::mw {

class MessageManager {
 public:
  MessageManager(AdHocManager& adhoc, NodeStats& stats, std::size_t store_capacity = 10000);
  /// Cancels any scheduled verify-queue flush: the flush lambda captures
  /// `this`, so it must not outlive the manager in the scheduler.
  ~MessageManager();

  bundle::BundleStore& store() { return store_; }
  const bundle::BundleStore& store() const { return store_; }

  // --- certificate cache (Fig 3b: forwarders re-send origin certificates) --
  void remember_certificate(const pki::Certificate& cert);
  const pki::Certificate* certificate_for(const pki::UserId& uid) const;

  // --- peer/session bookkeeping ------------------------------------------
  /// Authenticated user id of a connected peer (nullopt before handshake).
  std::optional<pki::UserId> peer_user(sim::PeerId peer) const;
  std::vector<sim::PeerId> secure_peers() const { return adhoc_.secure_peers(); }

  // --- outbound operations (called by the routing manager) -----------------
  void send_summary(sim::PeerId peer, const SummaryFrame& summary);
  void send_request(sim::PeerId peer, const RequestFrame& request);
  /// Ship one bundle with its origin certificate; no-op without the cert
  /// (a forwarder that cannot prove provenance must not forward).
  bool send_bundle(sim::PeerId peer, const bundle::Bundle& b, std::uint32_t spray_copies);
  /// True if this bundle was already sent on the current session (avoids
  /// duplicate transmission while co-located).
  bool already_sent(sim::PeerId peer, const bundle::BundleId& id) const;

  // --- callbacks up to the routing manager ---------------------------------
  std::function<void(sim::PeerId, const std::map<pki::UserId, std::uint32_t>&)> on_peer_advert;
  std::function<void(sim::PeerId, const pki::UserId&)> on_session_ready;
  std::function<void(sim::PeerId)> on_session_down;
  std::function<void(sim::PeerId, const SummaryFrame&)> on_summary;
  std::function<void(sim::PeerId, const RequestFrame&)> on_request;
  /// Verified bundle (certificate + signature already checked) + origin cert.
  std::function<void(sim::PeerId, bundle::Bundle, const pki::Certificate&, std::uint32_t)>
      on_bundle;

  AdHocManager& adhoc() { return adhoc_; }

  /// When > 0, received bundles are queued for up to this many sim-seconds
  /// and verified together in one batch signature pass (an incoming burst
  /// pays ~one double-scalar multiplication instead of one per bundle).
  /// 0 (the default) keeps the synchronous per-bundle path.
  void set_verify_batch_window(util::SimTime window) { verify_batch_window_ = window; }

  /// Adaptive flushing for the batch-verify window: a peer's queued entries
  /// are verified and delivered the moment its session drops (instead of
  /// dying with the transfer), and the whole queue flushes early under
  /// store pressure (when it reaches `max_queue` entries). Recovers the
  /// delivery loss a long window costs in dense cells while keeping the
  /// batched signature passes.
  void set_verify_batch_adaptive(bool adaptive, std::size_t max_queue = 256) {
    verify_batch_adaptive_ = adaptive;
    verify_batch_max_queue_ = max_queue > 0 ? max_queue : 1;
  }

  /// Power-cycle state loss (fault-injection churn): the verify queue and
  /// its pending flush, session bookkeeping, and the certificate cache all
  /// lived in RAM and are gone. The bundle store is nominally persisted;
  /// pass lose_store to model flash loss too. The node's own certificate is
  /// re-remembered (it ships with the app).
  void reset_after_reboot(bool lose_store);

  // --- scheduler rebinding (episode-partitioned replay) -------------------
  /// Release the scheduler binding, remembering the pending flush deadline.
  /// The ad hoc manager must still be attached when this is called.
  void detach();
  /// Re-arm the pending flush (if any) on the newly attached scheduler.
  /// Call after AdHocManager::attach.
  void attach();

  // --- checkpointing (soak harness) ----------------------------------------
  /// Serialize store contents, certificate cache and the pending-flush
  /// deadline. Only callable at a quiescent cut (no live sessions: the
  /// session bookkeeping and verify queue must already be empty — a session
  /// drop drains both). Config knobs (batch window/adaptive/max queue) stay
  /// with the owner.
  void save_state(util::Writer& w) const;
  /// Mirror of save_state; call while detached, before attach() re-arms the
  /// restored flush deadline. Returns false on malformed input leaving the
  /// manager untouched.
  bool load_state(util::Reader& r);

 private:
  void handle_frame(sim::PeerId peer, FrameType type, util::Bytes payload);
  void flush_verify_queue();

  struct PendingBundle {
    sim::PeerId peer;
    bundle::Bundle bundle;
    pki::Certificate cert;
    std::uint32_t spray_copies = 0;
    // Peers whose copy of the same bundle was deduplicated onto this entry;
    // if `peer`'s session drops before the flush, one of them inherits it.
    std::vector<sim::PeerId> also_offered_by{};
  };

  AdHocManager& adhoc_;
  // sos-lint: allow(seam-exempt) reference to node-lifetime stats storage;
  // rebinding happens one layer down (AdHocManager owns the scheduler ties).
  NodeStats& stats_;
  // sos-lint: allow(seam-exempt) pure value state: the store is exactly the
  // payload the seam exists to carry across shards, untouched.
  bundle::BundleStore store_;
  std::map<pki::UserId, pki::Certificate> cert_cache_;  // sos-lint: allow(seam-exempt) value state, no scheduler handles
  // sos-lint: allow(seam-exempt) session identity/send bookkeeping: keyed by
  // live PeerId sessions, which AdHocManager tears down on session drop (not
  // on detach — sessions survive a shard boundary by design, see mw_test's
  // shard-crossing session pins).
  std::map<sim::PeerId, pki::UserId> session_users_;
  // sos-lint: allow(seam-exempt) same lifecycle as session_users_.
  std::map<sim::PeerId, std::set<bundle::BundleId>> sent_this_session_;
  /// Batch-verify and deliver the given queue entries now.
  void flush_entries(std::vector<PendingBundle> entries);

  std::vector<PendingBundle> verify_queue_;
  bool verify_flush_scheduled_ = false;
  // Invariant (asserted at the arm/disarm sites): != kInvalidEventId exactly
  // while verify_flush_scheduled_ and attached; reset to the sentinel the
  // moment the event is cancelled or fires, so a stale id can never be
  // cancelled against a *different* scheduler shard after re-attach.
  sim::EventId verify_flush_event_ = sim::kInvalidEventId;
  util::SimTime verify_flush_at_ = 0.0;  // absolute deadline of that flush
  // sos-lint: allow(seam-exempt) scenario-constant batching knobs, fixed at
  // configure time; the only shard-sensitive flush state is the event id and
  // deadline above, which attach()/detach() do handle.
  util::SimTime verify_batch_window_ = 0.0;
  bool verify_batch_adaptive_ = false;  // sos-lint: allow(seam-exempt) see verify_batch_window_
  std::size_t verify_batch_max_queue_ = 256;  // sos-lint: allow(seam-exempt) see verify_batch_window_
};

}  // namespace sos::mw
